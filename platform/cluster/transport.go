package cluster

import (
	"repro/internal/atm"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/sim"
)

// Extra accounting labels for Table 1's rows.
const (
	acctReadType = "read-type" // first read: the 1-byte message type
	acctReadEnv  = "read-env"  // second read: credit field + envelope
	acctReadData = "read-data" // payload reads
)

// headerBytes is the paper's 25-byte protocol header, shared with the
// other socket transports through the flow layer.
const headerBytes = flow.HeaderBytes

// transport implements core.Transport over the cluster's sockets.
type transport struct {
	cl    *atm.Cluster
	eng   *core.Engine
	rank  int
	size  int
	max   int // eager threshold
	kind  TransportKind
	net   atm.MediumKind
	peers []*transport

	conns []*atm.TCP // TCP mesh (nil diagonal)
	dgram dgramLink  // UDP (reliable layer) or U-Net mode

	// pool recycles frame scratch, eager bounce buffers, and datagram
	// read buffers (the engine's pool, so counters land in the rank's
	// account). All the socket layers copy payloads on Send/Write, so a
	// frame is recyclable as soon as the call returns.
	pool *core.BufPool

	inbox []*core.Packet
	rr    int // round-robin parse start

	// Credit flow control (sender side): bytes we may still push toward
	// each destination's reserved memory, with queued sends held in issue
	// order by the shared flow layer.
	fc         *flow.Queue
	creditCap  int
	creditCond *sim.Cond
	// Receiver side: freed reservation owed back to each sender.
	owed *flow.Owed

	// Rendezvous state.
	rndvSend   map[int64]*core.Request // sender requests awaiting CTS
	rndvRecv   map[uint32]*rndvRecvSt  // receiver handle -> landing state
	nextHandle uint32
	// RDMA-write rendezvous (MPICH2/InfiniBand style): advertisements of
	// pre-posted rendezvous receives, by destination rank, consumed by the
	// first matching standard/buffered rendezvous send. noRTR pins the
	// two-sided RTS/CTS protocol (the ablation's baseline).
	rtrQ  map[int][]rtrAd
	noRTR bool
	// In-progress inbound Data frames, per source (TCP only): the payload
	// read consumes only what the kernel buffer holds and resumes on later
	// polls, so a receiver never parks mid-frame holding unsent bytes of
	// its own.
	inData []*tcpData

	// Buffered sends whose credits arrived; shipped on the next Poll from
	// the owning process's context.
	pendingShip []*core.Request

	// Ranks fenced by PeerDown: every frame toward them is swallowed —
	// retrying into a dead peer's black hole would otherwise escalate one
	// process failure into link death (RUDP retry exhaustion) or a parked
	// survivor (a TCP window that never reopens).
	dead map[int]bool
}

type rndvRecvSt struct {
	req   *core.Request
	env   core.Envelope // the RTS envelope (chunk headers mangle tag/count)
	got   int           // payload bytes landed so far (UDP chunking)
	want  int           // bytes that fit the posted buffer
	total int           // full message size announced by the RTS

	// RDMA-write rendezvous state: an advertised pre-posted receive must be
	// claimed from the matcher when its direct payload starts arriving. If
	// the claim fails (the receive matched an earlier message meanwhile),
	// the payload accumulates in bounce and re-enters through the matcher
	// as an eager arrival, in its exact stream position.
	rtr     bool
	started bool
	claimed bool
	bounce  []byte
}

// rtrAd is one sender-side record of a peer's pre-posted receive.
type rtrAd struct {
	env core.Envelope // Source = advertising rank; Count = buffer capacity
	aux uint32        // the receiver's landing handle
}

// tcpData tracks one partially-read rendezvous payload on a TCP stream.
type tcpData struct {
	st  *rndvRecvSt
	aux uint32        // the rndvRecv handle, for completion cleanup
	env core.Envelope // the Data frame's header envelope
}

func newTransport(cl *atm.Cluster, eng *core.Engine, rank, size, eager, credit int, kind TransportKind, net atm.MediumKind, peers []*transport) *transport {
	t := &transport{
		cl:         cl,
		eng:        eng,
		rank:       rank,
		size:       size,
		max:        eager,
		kind:       kind,
		net:        net,
		peers:      peers,
		conns:      make([]*atm.TCP, size),
		creditCap:  credit,
		creditCond: sim.NewCond(cl.SchedOf(rank)),
		// A quarter of the reservation owed triggers an explicit credit
		// return (one-sided traffic), keeping the pair deadlock-free.
		owed:     flow.NewOwed(size, credit/4),
		rndvSend: make(map[int64]*core.Request),
		rndvRecv: make(map[uint32]*rndvRecvSt),
		rtrQ:     make(map[int][]rtrAd),
		inData:   make([]*tcpData, size),
		pool:     eng.Pool(),
	}
	// Eager messages charge header+payload bytes against the receiver's
	// reservation; rendezvous envelopes are credit-exempt (their payload is
	// flow controlled by the CTS handshake) but still queue in issue order.
	t.fc = flow.NewQueue(size, credit, 0, func(req *core.Request) int {
		if req.Env.Count > t.max {
			return 0
		}
		return headerBytes + req.Env.Count
	}, eng.Acct())
	peers[rank] = t
	return t
}

func (t *transport) attachConn(peer int, c *atm.TCP) {
	t.conns[peer] = c
	c.OnReadable(func() { t.wake() })
	// Window updates must reach a writer parked in interleave (its yield
	// waits on the transport-wide creditCond, since the wakeup it needs may
	// arrive on any connection, not just the one it is writing).
	c.OnWritable(func() { t.wake() })
}

// dgramLink abstracts a reliable, in-order datagram channel: the RUDP
// layer over UDP, or the U-Net user-level endpoint (whose dedicated
// flow-controlled switch links are lossless and ordered by construction).
type dgramLink interface {
	Send(p *sim.Proc, dst int, data []byte) error
	TryRecv(p *sim.Proc, buf []byte) (n, src int, ok bool, err error)
	Readable() bool
	MaxDatagram() int
	OnArrival(fn func())
}

// unetLink adapts the U-Net endpoint to dgramLink.
type unetLink struct{ u *atm.UNet }

func (l unetLink) Send(p *sim.Proc, dst int, data []byte) error {
	l.u.SendTo(p, dst, data)
	return nil
}

func (l unetLink) TryRecv(p *sim.Proc, buf []byte) (int, int, bool, error) {
	if !l.u.Readable() {
		return 0, 0, false, nil
	}
	n, src := l.u.RecvFrom(p, buf)
	return n, src, true, nil
}

func (l unetLink) Readable() bool      { return l.u.Readable() }
func (l unetLink) MaxDatagram() int    { return atm.UNetMaxPDU }
func (l unetLink) OnArrival(fn func()) { l.u.OnReadable(fn) }

func (t *transport) attachDgram(d dgramLink) {
	t.dgram = d
	d.OnArrival(func() { t.wake() })
}

// wake rouses both the engine (blocked receivers) and any sender parked on
// flow control — a credit return may be riding the arrival.
func (t *transport) wake() {
	t.creditCond.Broadcast()
	t.eng.Wake()
}

var _ core.Transport = (*transport)(nil)

// MaxEager implements core.Transport.
func (t *transport) MaxEager() int { return t.max }

// writeFrame ships one protocol message (header + optional payload),
// charging p the full kernel send path.
func (t *transport) writeFrame(p *sim.Proc, dst int, kind core.PacketKind, env core.Envelope, aux uint32, payload []byte) {
	if t.dead[dst] {
		return // fenced: the peer is dead, the frame would go nowhere
	}
	frame := t.pool.Get(headerBytes + len(payload))
	flow.EncodeHeaderInto(frame, kind, t.owed.Take(dst), env, aux)
	copy(frame[headerBytes:], payload)
	if t.kind == TCP {
		t.conns[dst].Write(p, frame)
	} else if err := t.dgram.Send(p, dst, frame); err != nil {
		// Datagram modes: one datagram per message; oversized payloads are
		// chunked by the caller before reaching here.
		t.fail(err)
	}
	t.pool.Put(frame)
}

// fail declares the transport dead: the error (typed ErrLinkDown unless the
// link already produced an MPI error) completes every pending request and
// fails all subsequent operations, so Wait callers see the failure instead
// of hanging on a link that will never deliver.
func (t *transport) fail(err error) {
	if _, ok := err.(*core.Error); !ok {
		err = core.Errorf(core.ErrLinkDown, "cluster/%s rank %d: %v", t.kind, t.rank, err)
	}
	t.eng.Fatal(err)
}

// transmit ships one protocol message whose flow control has cleared:
// rendezvous envelope or eager header+payload.
func (t *transport) transmit(p *sim.Proc, req *core.Request) {
	if req.Err() != nil || t.dead[req.Env.Dest] {
		// The destination died while the message queued on flow control (the
		// engine already failed the request with ErrPeerDown). Done() is the
		// wrong guard here: a buffered send completes at Isend time yet must
		// still ship.
		return
	}
	if req.Env.Count > t.max {
		if ad, ok := t.takeRTR(req); ok {
			// The receiver advertised a matching pre-posted buffer: write
			// the payload directly, skipping the RTS/CTS round trip.
			t.eng.Acct().Incr("rndv-rtr", 1)
			t.sendDirect(p, req, ad.aux)
			return
		}
		// Rendezvous: envelope only; the payload moves on CTS.
		t.rndvSend[req.Env.SendID] = req
		t.eng.Acct().Incr("rndv", 1)
		t.writeFrame(p, req.Env.Dest, core.PktRTS, req.Env, 0, nil)
		return
	}
	t.eng.Acct().Incr("eager", 1)
	t.writeFrame(p, req.Env.Dest, core.PktEager, req.Env, 0, req.Buf)
	t.eng.SendDone(req)
}

// Send implements core.Transport. It never blocks: messages short of
// credits queue in the flow layer in issue order (behind any queued
// predecessor, including rendezvous envelopes, preserving MPI's
// non-overtaking rule) and are shipped from the owning process's next Poll
// once credits return.
func (t *transport) Send(p *sim.Proc, req *core.Request) {
	if t.fc.Offer(req) {
		t.transmit(p, req)
	}
}

// Accept implements core.Transport: register the landing buffer and send
// the CTS naming it.
func (t *transport) Accept(p *sim.Proc, msg *core.InMsg, req *core.Request) {
	t.nextHandle++
	h := t.nextHandle
	want := msg.Env.Count
	if want > len(req.Buf) {
		want = len(req.Buf)
	}
	t.rndvRecv[h] = &rndvRecvSt{req: req, env: msg.Env, want: want, total: msg.Env.Count}
	t.writeFrame(p, msg.Env.Source, core.PktCTS, msg.Env, h, nil)
}

// SendPayload implements core.Transport: a CTS surfaced at the sender, so
// this process pushes the payload itself — the cluster has no co-processor
// to do it in the background, which is exactly the progress limitation the
// paper discusses for socket transports.
func (t *transport) SendPayload(p *sim.Proc, req *core.Request, pkt *core.Packet) {
	handle, _ := pkt.Handle.(uint32)
	delete(t.rndvSend, req.Env.SendID)
	dst := req.Env.Dest
	data := req.Buf
	if t.kind == TCP {
		// The frame may exceed the receiver's TCP window, and the peer may
		// be pushing an equally large frame at us at the same moment (the
		// symmetric exchanges every large collective performs). A plain
		// blocking write would park both sides on window space with neither
		// draining its inbound stream, so interleave: whenever the window
		// closes, parse whatever has arrived before parking.
		frame := t.pool.Get(headerBytes + len(data))
		flow.EncodeHeaderInto(frame, core.PktData, t.owed.Take(dst), req.Env, handle)
		copy(frame[headerBytes:], data)
		t.conns[dst].WriteInterleaved(p, frame, func() {
			if !t.parseAvailable(p) {
				t.creditCond.Wait(p)
			}
		})
		t.pool.Put(frame)
		t.eng.SendDone(req)
		return
	}
	// Datagram modes: chunk to datagram size; the chunk offset travels in
	// the tag field (Data packets carry no user tag).
	maxChunk := t.dgram.MaxDatagram() - headerBytes
	for off := 0; off < len(data) || off == 0; off += maxChunk {
		end := off + maxChunk
		if end > len(data) {
			end = len(data)
		}
		env := req.Env
		env.Tag = off
		env.Count = end - off
		t.writeFrame(p, dst, core.PktData, env, handle, data[off:end])
		if end == len(data) {
			break
		}
	}
	t.eng.SendDone(req)
}

// --------------------------------------------------- RDMA-write rendezvous --
//
// The socket transports have no remote-memory primitive, but they can
// still eliminate the rendezvous matching round trip the way MPICH2 does
// on InfiniBand: when a rendezvous-sized receive is posted before its
// message with a specific source and tag, the receiver advertises the
// buffer (PktRTR, credit-exempt) and the sender's first matching
// standard/buffered rendezvous send writes its payload directly — one
// traversal instead of three.
//
// The advertisement is purely an optimization, never a promise: the
// receive stays posted in the matcher, so an earlier in-flight message
// can still match it. The direct payload therefore *claims* the receive
// when it starts arriving; if the claim fails the bytes detour through a
// bounce buffer and re-enter the matcher as an eager arrival in their
// exact stream position, which preserves MPI's per-pair matching order
// (all frames of the direct payload precede any later frame from that
// sender on the same ordered channel).

// AdvertiseRecv implements core.RecvAdvertiser: register a landing handle
// for the pre-posted receive and tell the prospective sender about it.
func (t *transport) AdvertiseRecv(p *sim.Proc, req *core.Request) {
	if t.noRTR {
		return
	}
	t.nextHandle++
	h := t.nextHandle
	// st.env is the status envelope should the direct payload land: the
	// posted signature with count/mode filled in from the first chunk.
	t.rndvRecv[h] = &rndvRecvSt{
		req:  req,
		env:  core.Envelope{Source: req.Env.Source, Tag: req.Env.Tag, Context: req.Env.Context},
		want: len(req.Buf),
		rtr:  true,
	}
	// The frame's envelope names this rank as source (it is the frame's
	// sender) and carries the posted signature plus buffer capacity.
	ad := core.Envelope{Source: t.rank, Tag: req.Env.Tag, Context: req.Env.Context, Count: len(req.Buf)}
	t.eng.Acct().Incr("rtr-post", 1)
	t.writeFrame(p, req.Env.Source, core.PktRTR, ad, h, nil)
}

// takeRTR consumes the first advertisement matching a rendezvous send.
// Synchronous sends keep the RTS/CTS path (their ack rides the CTS), and
// ready sends assert the receive exists anyway; an advertisement whose
// capacity is short of the message falls back too, keeping truncation on
// the one code path that handles it.
func (t *transport) takeRTR(req *core.Request) (rtrAd, bool) {
	if t.noRTR || (req.Env.Mode != core.ModeStandard && req.Env.Mode != core.ModeBuffered) {
		return rtrAd{}, false
	}
	q := t.rtrQ[req.Env.Dest]
	for i, ad := range q {
		if ad.env.Context == req.Env.Context && ad.env.Tag == req.Env.Tag && ad.env.Count >= req.Env.Count {
			t.rtrQ[req.Env.Dest] = append(q[:i:i], q[i+1:]...)
			return ad, true
		}
	}
	return rtrAd{}, false
}

// sendDirect writes a rendezvous payload straight to an advertised
// buffer: a Data frame with no preceding RTS/CTS exchange. Direct data
// is credit-exempt, like the CTS-clocked payload it replaces.
func (t *transport) sendDirect(p *sim.Proc, req *core.Request, aux uint32) {
	dst := req.Env.Dest
	data := req.Buf
	if t.kind == TCP {
		// Same interleaving discipline as SendPayload: drain inbound frames
		// whenever the peer's window closes, so symmetric large exchanges
		// cannot deadlock.
		frame := t.pool.Get(headerBytes + len(data))
		flow.EncodeHeaderInto(frame, core.PktData, t.owed.Take(dst), req.Env, aux)
		copy(frame[headerBytes:], data)
		t.conns[dst].WriteInterleaved(p, frame, func() {
			if !t.parseAvailable(p) {
				t.creditCond.Wait(p)
			}
		})
		t.pool.Put(frame)
		t.eng.SendDone(req)
		return
	}
	// Datagram modes: chunked like the CTS path, the offset in the tag
	// field — plus the full message size in the id field, since no RTS
	// ever announced it to the receiver.
	maxChunk := t.dgram.MaxDatagram() - headerBytes
	for off := 0; off < len(data) || off == 0; off += maxChunk {
		end := off + maxChunk
		if end > len(data) {
			end = len(data)
		}
		env := req.Env
		env.Tag = off
		env.Count = end - off
		env.SendID = int64(len(data))
		t.writeFrame(p, dst, core.PktData, env, aux, data[off:end])
		if end == len(data) {
			break
		}
	}
	t.eng.SendDone(req)
}

// startRTR begins the landing of a direct payload: fix the total from the
// first frame and claim the advertised receive from the matcher. A failed
// claim switches the landing to a bounce buffer for re-injection.
func (t *transport) startRTR(st *rndvRecvSt, total int, mode core.Mode) {
	st.started = true
	st.total = total
	if st.want > total {
		st.want = total
	}
	st.env.Count = total
	st.env.Mode = mode
	if t.eng.ClaimDirect(st.req) {
		st.claimed = true
		return
	}
	st.bounce = make([]byte, total)
	t.eng.Acct().Incr("rtr-stale", 1)
}

// finishRTRFallback surfaces a bounced direct payload as an eager
// arrival. The engine's eager path will Release reservation that was
// never consumed (direct data is credit-exempt), slightly inflating the
// pair's credit; the drift is bounded by the stale-claim count and only
// ever loosens flow control, so we accept it for this rare race.
func (t *transport) finishRTRFallback(st *rndvRecvSt) {
	t.inbox = append(t.inbox, &core.Packet{Kind: core.PktEager, Env: st.env, Data: st.bounce})
}

// Control implements core.Transport (synchronous-mode acks).
func (t *transport) Control(p *sim.Proc, dst int, kind core.PacketKind, env core.Envelope) {
	t.writeFrame(p, dst, kind, env, 0, nil)
}

// Release implements core.Transport: reservation freed at the receiver.
// Credit returns piggyback on outgoing headers; when a quarter of the
// reservation is owed (one-sided traffic), an explicit credit message
// flushes it — keeping the pair deadlock-free.
func (t *transport) Release(p *sim.Proc, src int, n int) {
	if t.owed.Add(src, n+headerBytes) {
		t.writeFrame(p, src, core.PktCredit, core.Envelope{Source: t.rank}, 0, nil)
	}
}

// PeerDown implements core.PeerFencer: fence every piece of per-peer
// transport state toward a dead rank so nothing ever retries into its
// black hole — queued sends are dropped (the engine already failed their
// requests), rendezvous bookkeeping toward it is forgotten, flow-control
// capacity is restored (the corpse can never grant credit back), and the
// wire itself is fenced (TCP discards, RUDP abandons retransmission).
func (t *transport) PeerDown(rank int) {
	if t.dead == nil {
		t.dead = make(map[int]bool)
	}
	t.dead[rank] = true
	for id, req := range t.rndvSend {
		if req.Env.Dest == rank {
			delete(t.rndvSend, id)
		}
	}
	delete(t.rtrQ, rank)
	t.fc.DropDst(rank, t.creditCap, nil)
	keep := t.pendingShip[:0]
	for _, req := range t.pendingShip {
		if req.Env.Dest != rank {
			keep = append(keep, req)
		}
	}
	t.pendingShip = keep
	if t.kind == TCP {
		if c := t.conns[rank]; c != nil {
			c.Drop()
		}
	} else if dp, ok := t.dgram.(interface{ DropPeer(int) }); ok {
		dp.DropPeer(rank)
	}
	t.wake()
}

// addCredit books returned reservation at the sender side: the flow layer
// re-admits queued sends in issue order onto the pendingShip list; the
// owning process transmits them on its next Poll (kernel writes need a
// process context to charge).
func (t *transport) addCredit(src, n int) {
	if n == 0 {
		return
	}
	t.fc.Grant(src, n, func(req *core.Request) {
		t.pendingShip = append(t.pendingShip, req)
	})
	t.creditCond.Broadcast()
	t.eng.Wake()
}

// Poll implements core.Transport. Shipping runs after parsing: the parse
// step is what returns credits, and a send freed by this very poll must go
// out now (the engine stops polling once Poll returns nil).
func (t *transport) Poll(p *sim.Proc) *core.Packet {
	if len(t.inbox) == 0 {
		t.parseAvailable(p)
	}
	t.shipPending(p)
	if len(t.inbox) == 0 {
		return nil
	}
	pkt := t.inbox[0]
	t.inbox = t.inbox[1:]
	return pkt
}

// shipPending transmits queued sends whose flow control cleared.
func (t *transport) shipPending(p *sim.Proc) {
	for len(t.pendingShip) > 0 {
		req := t.pendingShip[0]
		t.pendingShip = t.pendingShip[1:]
		t.transmit(p, req)
	}
}

// Pending implements core.Transport.
func (t *transport) Pending() bool {
	if len(t.inbox) > 0 || len(t.pendingShip) > 0 {
		return true
	}
	if t.kind == TCP {
		for _, c := range t.conns {
			if c != nil && c.Readable() {
				return true
			}
		}
		return false
	}
	return t.dgram.Readable()
}

// parseAvailable consumes every complete message currently readable,
// reporting whether anything was processed.
func (t *transport) parseAvailable(p *sim.Proc) bool {
	any := false
	if t.kind != TCP {
		for t.parseDgram(p) {
			any = true
		}
		return any
	}
	progress := true
	for progress {
		progress = false
		for i := 0; i < t.size; i++ {
			j := (t.rr + i) % t.size
			conn := t.conns[j]
			if conn == nil || !conn.Readable() {
				continue
			}
			t.parseTCP(p, j, conn)
			progress, any = true, true
		}
		t.rr = (t.rr + 1) % t.size
	}
	return any
}

// parseTCP consumes one message from conn, performing the paper's two
// header reads (message type, then credit+envelope) and any payload read.
func (t *transport) parseTCP(p *sim.Proc, src int, conn *atm.TCP) {
	if d := t.inData[src]; d != nil {
		// Resume the partially-read Data frame before touching headers:
		// everything readable on this stream is its remaining payload.
		t.readData(p, src, conn, d)
		return
	}
	acct := t.eng.Acct()
	var hdr [headerBytes]byte

	t0 := p.Now()
	conn.ReadFull(p, hdr[:1])
	acct.Book(acctReadType, sim.Duration(p.Now()-t0))
	acct.Incr(acctReadType, 1)

	t1 := p.Now()
	conn.ReadFull(p, hdr[1:])
	acct.Book(acctReadEnv, sim.Duration(p.Now()-t1))
	acct.Incr(acctReadEnv, 1)

	kind, credit, env, aux := flow.DecodeHeader(hdr[:])
	t.addCredit(src, credit)

	switch kind {
	case core.PktEager:
		payload := t.pool.Get(env.Count)
		t2 := p.Now()
		conn.ReadFull(p, payload)
		acct.Book(acctReadData, sim.Duration(p.Now()-t2))
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env, Data: payload, Pool: t.pool})
	case core.PktRTS:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env})
	case core.PktCTS:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env, ReqID: env.SendID, Handle: aux})
	case core.PktData:
		st := t.rndvRecv[aux]
		if st == nil {
			t.eng.Errors = append(t.eng.Errors, core.Errorf(core.ErrInternal, "rendezvous data for unknown handle %d", aux))
			return
		}
		if st.rtr && !st.started {
			// Direct payload for an advertised receive: the frame carries
			// the full send envelope, so the total is its count.
			t.startRTR(st, env.Count, env.Mode)
		}
		d := &tcpData{st: st, aux: aux, env: env}
		t.inData[src] = d
		t.readData(p, src, conn, d)
	case core.PktRTR:
		t.rtrQ[env.Source] = append(t.rtrQ[env.Source], rtrAd{env: env, aux: aux})
	case core.PktSyncAck:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env, ReqID: env.SendID})
	case core.PktRevoke:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env})
	case core.PktCredit:
		// Credit already booked from the header; nothing to surface.
	default:
		t.eng.Errors = append(t.eng.Errors, core.Errorf(core.ErrInternal, "unknown packet kind %d from %d", kind, src))
	}
}

// readData lands however much of a rendezvous payload the kernel buffer
// holds, resuming on later polls until the frame completes. Reading only
// buffered bytes — never parking for more — is what keeps two peers
// exchanging window-exceeding payloads deadlock-free: each side alternates
// between pushing its own frame and draining the other's.
func (t *transport) readData(p *sim.Proc, src int, conn *atm.TCP, d *tcpData) {
	acct := t.eng.Acct()
	st := d.st
	// A stale-claimed direct payload lands in the bounce buffer (sized to
	// the full message, so it never truncates); everything else lands in
	// the posted buffer up to its capacity.
	landBuf, landMax := st.req.Buf, st.want
	if st.bounce != nil {
		landBuf, landMax = st.bounce, st.total
	}
	for st.got < st.total {
		n := conn.Buffered()
		if n == 0 {
			return // resume when the next segment arrives
		}
		if rem := st.total - st.got; n > rem {
			n = rem
		}
		t2 := p.Now()
		if st.got < landMax {
			end := st.got + n
			if end > landMax {
				end = landMax
			}
			conn.ReadFull(p, landBuf[st.got:end])
			if rest := n - (end - st.got); rest > 0 {
				// The receive buffer was short: drain and discard the excess.
				junk := t.pool.Get(rest)
				conn.ReadFull(p, junk)
				t.pool.Put(junk)
			}
		} else {
			junk := t.pool.Get(n)
			conn.ReadFull(p, junk)
			t.pool.Put(junk)
		}
		acct.Book(acctReadData, sim.Duration(p.Now()-t2))
		st.got += n
	}
	t.inData[src] = nil
	delete(t.rndvRecv, d.aux)
	if st.bounce != nil {
		t.finishRTRFallback(st)
		return
	}
	t.inbox = append(t.inbox, &core.Packet{Kind: core.PktData, Env: d.env, ReqID: st.req.ID})
}

// parseDgram consumes one reliable datagram, reporting whether one was
// available.
func (t *transport) parseDgram(p *sim.Proc) bool {
	buf := t.pool.Get(t.dgram.MaxDatagram())
	defer t.pool.Put(buf)
	n, _, ok, err := t.dgram.TryRecv(p, buf)
	if err != nil {
		t.fail(err)
	}
	if !ok {
		return false
	}
	if n < headerBytes {
		t.eng.Errors = append(t.eng.Errors, core.Errorf(core.ErrInternal, "short datagram (%d bytes)", n))
		return true
	}
	kind, credit, env, aux := flow.DecodeHeader(buf[:headerBytes])
	t.addCredit(env.Source, credit)
	payload := buf[headerBytes:n]

	switch kind {
	case core.PktEager:
		data := t.pool.Get(len(payload))
		copy(data, payload)
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env, Data: data, Pool: t.pool})
	case core.PktRTS:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env})
	case core.PktCTS:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env, ReqID: env.SendID, Handle: aux})
	case core.PktData:
		st := t.rndvRecv[aux]
		if st == nil {
			t.eng.Errors = append(t.eng.Errors, core.Errorf(core.ErrInternal, "rendezvous data for unknown handle %d", aux))
			return true
		}
		if st.rtr && !st.started {
			// Direct payload for an advertised receive: no RTS announced
			// the size, so the total rides the chunk's id field.
			t.startRTR(st, int(env.SendID), env.Mode)
		}
		off := env.Tag // chunk offset rides in the tag field
		if st.bounce != nil {
			copy(st.bounce[off:off+len(payload)], payload)
		} else if off < st.want {
			end := off + len(payload)
			if end > st.want {
				end = st.want
			}
			copy(st.req.Buf[off:end], payload[:end-off])
		}
		st.got += len(payload)
		if st.got >= st.total {
			delete(t.rndvRecv, aux)
			if st.bounce != nil {
				t.finishRTRFallback(st)
			} else {
				t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: st.env, ReqID: st.req.ID})
			}
		}
	case core.PktRTR:
		t.rtrQ[env.Source] = append(t.rtrQ[env.Source], rtrAd{env: env, aux: aux})
	case core.PktSyncAck:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env, ReqID: env.SendID})
	case core.PktRevoke:
		t.inbox = append(t.inbox, &core.Packet{Kind: kind, Env: env})
	case core.PktCredit:
	default:
		t.eng.Errors = append(t.eng.Errors, core.Errorf(core.ErrInternal, "unknown packet kind %d", kind))
	}
	return true
}
