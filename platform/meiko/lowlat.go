package meiko

import (
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/meiko"
	"repro/internal/sim"
)

// envelopeTxnBytes is the control payload of a low-latency envelope
// transaction (the engine envelope serialized into the transaction).
const envelopeTxnBytes = 20

// ctrlTxnBytes is a small control transaction (CTS, slot-free, sync ack).
const ctrlTxnBytes = 8

// slotPollCost is the SPARC cost to scan the arrival slots in Poll.
const slotPollCost = 6000 // ns

// lowlatTransport implements core.Transport on raw Meiko transactions and
// DMAs — the paper's low-latency device. Eager messages ride a single
// transaction into the receiver's preallocated per-sender envelope slot
// (one outstanding message per (sender, receiver) pair, §4.1); larger
// messages announce themselves with an envelope transaction and move by a
// sender-Elan DMA once the receiver matches — with no SPARC involvement at
// the sender after the CTS, unlike the cluster port.
type lowlatTransport struct {
	m    *meiko.Machine
	node *meiko.Node
	eng  *core.Engine
	max  int
	all  []*lowlatTransport // indexed by rank

	inbox []*core.Packet

	// Envelope-slot flow control through the shared flow layer: at most
	// `slots` outstanding envelopes per destination (the paper allocates
	// exactly one, §4.1), each envelope — eager or rendezvous — costing one
	// slot, with queued successors held in issue order.
	slots int
	fc    *flow.Queue

	// Rendezvous sends awaiting their CTS, by send request id.
	rndv map[int64]*core.Request

	// Hardware-broadcast state.
	bcSeq   int    // last broadcast sequence delivered here
	bcData  []byte // payload of that broadcast
	bcCond  *sim.Cond
	bcReady int // ready tokens collected (when acting as root)
}

func newLowlatTransport(m *meiko.Machine, node *meiko.Node, eng *core.Engine, eager, slots int, all []*lowlatTransport) *lowlatTransport {
	if slots < 1 {
		slots = 1
	}
	t := &lowlatTransport{
		m:      m,
		node:   node,
		eng:    eng,
		max:    eager,
		slots:  slots,
		all:    all,
		rndv:   make(map[int64]*core.Request),
		bcCond: sim.NewCond(node.S),
	}
	t.fc = flow.NewQueue(len(all), slots, slots,
		func(*core.Request) int { return 1 }, eng.Acct())
	return t
}

var _ core.Transport = (*lowlatTransport)(nil)

// MaxEager implements core.Transport.
func (t *lowlatTransport) MaxEager() int { return t.max }

// push delivers a packet into this rank's slot area (event context).
func (t *lowlatTransport) push(pkt *core.Packet) {
	t.inbox = append(t.inbox, pkt)
	t.eng.Wake()
}

// Send implements core.Transport. Every envelope — eager or rendezvous —
// occupies the destination's single envelope slot (§4.1's per-sender slot),
// which also totally orders the pair's envelopes; when the slot is busy the
// message queues in the flow layer and is transmitted, in issue order, as
// slot-free acknowledgements return.
func (t *lowlatTransport) Send(p *sim.Proc, req *core.Request) {
	if !t.fc.Offer(req) {
		return
	}
	t.eng.Acct().Charge(p, core.CostProtocol, t.m.Costs.TxnIssue)
	t.transmit(req)
}

// transmit ships one envelope (proc or event context); the slot for
// req.Env.Dest must already be held.
func (t *lowlatTransport) transmit(req *core.Request) {
	if req.Err() != nil {
		// Failed while queued on the envelope slot — the destination died
		// (or this rank turned fatal). Done() is the wrong guard: a
		// buffered send completes at Isend time yet must still ship.
		return
	}
	env := req.Env
	dst := env.Dest
	if env.Count > t.max {
		t.rndv[env.SendID] = req
		t.eng.Acct().Incr("rndv", 1)
		t.node.Txn(dst, envelopeTxnBytes, false, func() {
			t.all[dst].push(&core.Packet{Kind: core.PktRTS, Env: env})
		})
		// The envelope slot frees when the receiver consumes the RTS
		// (see Poll); local completion comes with the DMA.
		return
	}
	t.eng.Acct().Incr("eager", 1)
	// The per-sender envelope slot is modeled by a pooled bounce buffer:
	// the receiving engine recycles it after the copy-out that frees the
	// slot. A cross-lane Put would mutate this lane's freelist from the
	// destination lane, so cross-lane transfers use a plain GC-owned
	// buffer (Pool nil) instead.
	var (
		pool *core.BufPool
		data []byte
	)
	if t.all[dst].node.S != t.node.S {
		data = make([]byte, len(req.Buf))
	} else {
		pool = t.eng.Pool()
		data = pool.Get(len(req.Buf))
	}
	copy(data, req.Buf)
	t.node.Txn(dst, envelopeTxnBytes+len(data), false, func() {
		t.all[dst].push(&core.Packet{Kind: core.PktEager, Env: env, Data: data, Pool: pool})
	})
	t.eng.SendDone(req)
}

// Accept implements core.Transport: the receiver matched an RTS. The CTS
// transaction goes back to the sender's Elan, which starts the payload DMA
// autonomously — the sending SPARC never runs.
func (t *lowlatTransport) Accept(p *sim.Proc, msg *core.InMsg, req *core.Request) {
	c := t.m.Costs
	t.eng.Acct().Charge(p, core.CostProtocol, c.TxnIssue)
	src := msg.Env.Source
	env := msg.Env
	sender := t.all[src]
	recvEng := t.eng
	t.node.Txn(src, ctrlTxnBytes, false, func() {
		sreq := sender.rndv[env.SendID]
		if sreq == nil {
			return
		}
		delete(sender.rndv, env.SendID)
		// The CTS implies the receiver matched: synchronous-mode sends are
		// acknowledged here, since the engine never sees the CTS.
		sender.eng.SendAcked(sreq)
		n := env.Count
		if n > len(req.Buf) {
			n = len(req.Buf)
		}
		// The DMA landing event copies the payload on the receiver's lane,
		// concurrent (same epoch) with sender-lane events that may reuse the
		// buffer after SendDone — so cross-lane transfers snapshot it here,
		// on the sender's lane, while the send still owns it.
		payload := sreq.Buf
		if sender.node.S != t.node.S {
			snap := make([]byte, n)
			copy(snap, sreq.Buf[:n])
			payload = snap
		}
		sender.node.DMA(recvEng.Rank(), n,
			func() { sender.eng.SendDone(sreq) },
			func() {
				copy(req.Buf[:n], payload[:n])
				recvEng.RecvDataDone(req, env)
			})
	})
}

// SendPayload implements core.Transport. CTS packets never surface to the
// engine on this platform (the Elan consumes them), so this is never
// reached.
func (t *lowlatTransport) SendPayload(p *sim.Proc, req *core.Request, pkt *core.Packet) {
}

// Control implements core.Transport (synchronous-mode acks).
func (t *lowlatTransport) Control(p *sim.Proc, dst int, kind core.PacketKind, env core.Envelope) {
	c := t.m.Costs
	t.eng.Acct().Charge(p, core.CostProtocol, c.TxnIssue)
	t.node.Txn(dst, ctrlTxnBytes, false, func() {
		t.all[dst].push(&core.Packet{Kind: kind, Env: env, ReqID: env.SendID})
	})
}

// Release implements core.Transport. The envelope slot was already
// returned when Poll copied the message out of the slot area (the paper's
// design: the library buffers data temporarily at the receiver, and the
// per-sender slot holds only the newest envelope), so consuming the bounce
// copy needs no further transport action.
func (t *lowlatTransport) Release(p *sim.Proc, src int, n int) {}

// PeerDown implements core.PeerFencer: forget rendezvous sends toward the
// dead rank (their CTS can never arrive — the engine already failed the
// requests) and restore the envelope slots it held, since a corpse never
// returns slot-free acknowledgements.
func (t *lowlatTransport) PeerDown(rank int) {
	for id, req := range t.rndv {
		if req.Env.Dest == rank {
			delete(t.rndv, id)
		}
	}
	t.fc.DropDst(rank, t.slots, nil)
	t.eng.Wake()
	// Procs parked in the hardware-broadcast slot wait recheck the dead
	// set once woken (see HWBcast).
	t.bcCond.Broadcast()
}

// FatalWake wakes procs parked on transport-owned conditions when this
// rank's own engine turns fatal, so a killed process fails out of the
// hardware broadcast instead of sleeping forever.
func (t *lowlatTransport) FatalWake() { t.bcCond.Broadcast() }

// slotFreed runs at the sender (event context) when a slot-free
// transaction lands: the flow layer either reuses the slot immediately for
// the queued successor or banks it.
func (t *lowlatTransport) slotFreed(dst int) {
	shipped := false
	t.fc.Grant(dst, 1, func(req *core.Request) {
		shipped = true
		t.transmit(req)
	})
	if !shipped {
		t.eng.Wake()
	}
}

// Poll implements core.Transport: scan the slot area for the next
// arrival. Consuming any envelope — eager payload copied to the library's
// buffer, or a rendezvous announcement read out — frees the sender's slot
// with a small acknowledgement transaction, so the pair's next envelope
// may travel while this message waits (possibly unmatched) in the
// unexpected queue.
func (t *lowlatTransport) Poll(p *sim.Proc) *core.Packet {
	if len(t.inbox) == 0 {
		return nil
	}
	t.eng.Acct().Charge(p, core.CostProtocol, slotPollCost)
	pkt := t.inbox[0]
	t.inbox = t.inbox[1:]
	switch pkt.Kind {
	case core.PktEager, core.PktRTS:
		t.eng.Acct().Charge(p, core.CostProtocol, t.m.Costs.TxnIssue)
		me := t.eng.Rank()
		src := pkt.Env.Source
		t.node.Txn(src, ctrlTxnBytes, false, func() {
			t.all[src].slotFreed(me)
		})
	}
	return pkt
}

// Pending implements core.Transport.
func (t *lowlatTransport) Pending() bool { return len(t.inbox) > 0 }

// ------------------------------------------------------------ RemoteMemory --
//
// One-sided operations map straight onto the Elan primitives the paper's
// §4 device exposes: a small put is one remote transaction into the
// target's registered region, a large put is a sender-Elan DMA, and in
// both cases the target's Elan — never its SPARC — applies the bytes and
// fires the completion acknowledgement back, so the target process does
// not need to be inside an MPI call for the transfer to complete.

// rmaTxnHdrBytes is the one-sided header riding each RMA transaction or
// DMA announcement: window id, offset, and length.
const rmaTxnHdrBytes = 16

var _ core.RemoteMemory = (*lowlatTransport)(nil)

// rmaSnap snapshots an origin payload on the origin lane. Remote applies
// run in the target lane's event context, concurrent (same epoch) with
// origin-lane events, so the transfer must never share mutable storage
// across lanes; same-lane transfers keep the copy too — it is the modeled
// Elan's copy of the data leaving host memory.
func rmaSnap(data []byte) []byte {
	snap := make([]byte, len(data))
	copy(snap, data)
	return snap
}

// rmaApply lands a put or accumulate at the target (target lane event
// context) and acks back to the origin through the target Elan
// (elanIssued: no SPARC wakeup), firing done on the origin lane.
func (t *lowlatTransport) rmaApply(dst, win, off int, data []byte, op core.RMAOp, done func()) func() {
	me := t.eng.Rank()
	peer := t.all[dst]
	return func() {
		peer.eng.Win(win).ApplyAccumulate(off, data, op)
		peer.node.Txn(me, ctrlTxnBytes, true, done)
	}
}

// RMAPut implements core.RemoteMemory: small payloads ride one remote
// transaction, large ones a sender-Elan DMA.
func (t *lowlatTransport) RMAPut(p *sim.Proc, dst, win, off int, data []byte, done func()) {
	c := t.m.Costs
	snap := rmaSnap(data)
	apply := t.rmaApply(dst, win, off, snap, core.RMAReplace, done)
	if len(snap) <= t.max {
		t.eng.Acct().Charge(p, core.CostProtocol, c.TxnIssue)
		t.node.Txn(dst, rmaTxnHdrBytes+len(snap), false, apply)
		return
	}
	t.eng.Acct().Charge(p, core.CostProtocol, c.DMAIssue)
	t.node.DMA(dst, rmaTxnHdrBytes+len(snap), func() {}, apply)
}

// RMAAccumulate implements core.RemoteMemory: like a put, but the target
// Elan's handler combines instead of stores.
func (t *lowlatTransport) RMAAccumulate(p *sim.Proc, dst, win, off int, data []byte, op core.RMAOp, done func()) {
	c := t.m.Costs
	snap := rmaSnap(data)
	apply := t.rmaApply(dst, win, off, snap, op, done)
	if len(snap) <= t.max {
		t.eng.Acct().Charge(p, core.CostProtocol, c.TxnIssue)
		t.node.Txn(dst, rmaTxnHdrBytes+len(snap), false, apply)
		return
	}
	t.eng.Acct().Charge(p, core.CostProtocol, c.DMAIssue)
	t.node.DMA(dst, rmaTxnHdrBytes+len(snap), func() {}, apply)
}

// RMAGet implements core.RemoteMemory: a request transaction reaches the
// target's Elan, which reads the region and DMAs the bytes back; the
// landing event on the origin lane fills buf and completes the operation.
func (t *lowlatTransport) RMAGet(p *sim.Proc, dst, win, off int, buf []byte, done func()) {
	c := t.m.Costs
	me := t.eng.Rank()
	peer := t.all[dst]
	t.eng.Acct().Charge(p, core.CostProtocol, c.TxnIssue)
	t.node.Txn(dst, rmaTxnHdrBytes, false, func() {
		snap := make([]byte, len(buf))
		peer.eng.Win(win).ReadInto(off, snap)
		peer.node.DMA(me, rmaTxnHdrBytes+len(snap), func() {}, func() {
			copy(buf, snap)
			done()
		})
	})
}

// LowLatEndpoint is the low-latency engine plus the CS/2 hardware
// broadcast.
type LowLatEndpoint struct {
	*core.Engine
	tr *lowlatTransport
}

var _ core.HWBcaster = (*LowLatEndpoint)(nil)

// HWBcast implements core.HWBcaster using the CS/2 broadcast network: the
// root gathers tiny ready transactions (flow control), then injects the
// payload once; every other node's Elan deposits it into the broadcast
// slot where the waiting SPARC copies it out.
func (ep *LowLatEndpoint) HWBcast(p *sim.Proc, root, ctx int, buf []byte) error {
	t := ep.tr
	c := t.m.Costs
	size := ep.Size()
	if size == 1 {
		return nil
	}
	// The broadcast network reaches every node, so one dead member makes
	// the collective uncompletable: the root would wait forever for the
	// corpse's ready transaction (or a child for a dead root's payload).
	// Fail with the death reason instead of parking — detection is a
	// simultaneous simulated-time event on every survivor, so all ranks
	// take the same branch.
	ftCheck := func() error {
		if err := t.eng.FatalErr(); err != nil {
			return err
		}
		for _, r := range t.eng.DeadRanks() {
			return t.eng.DeadErr(r)
		}
		return nil
	}
	if err := ftCheck(); err != nil {
		return err
	}
	acct := ep.Acct()
	if ep.Rank() != root {
		// Tell the root we are ready to receive, then wait for the
		// broadcast to land in our slot.
		seq := t.bcSeq
		acct.Charge(p, core.CostProtocol, c.TxnIssue)
		t.node.Txn(root, ctrlTxnBytes, false, func() {
			rt := t.all[root]
			rt.bcReady++
			rt.bcCond.Broadcast()
		})
		for t.bcSeq == seq {
			if err := ftCheck(); err != nil {
				return err
			}
			t.bcCond.Wait(p)
		}
		n := copy(buf, t.bcData)
		acct.Charge(p, core.CostSync, c.ElanSync)
		acct.Charge(p, core.CostCopy, c.CopyBase+sim.Duration(n)*c.CopyPerByte)
		return nil
	}

	// Root: wait for everyone, then broadcast.
	for t.bcReady < size-1 {
		if err := ftCheck(); err != nil {
			return err
		}
		t.bcCond.Wait(p)
	}
	t.bcReady -= size - 1
	acct.Charge(p, core.CostProtocol, c.DMAIssue)
	payload := make([]byte, len(buf))
	copy(payload, buf)
	done := t.node.NewEvent()
	t.node.Broadcast(len(payload), func() { done.Set() }, func(dst *meiko.Node) {
		rt := t.all[dst.ID]
		rt.bcData = payload
		rt.bcSeq++
		rt.bcCond.Broadcast()
	})
	done.Wait(p)
	acct.Incr("hwbcast", 1)
	return nil
}
