// Package meiko runs MPI jobs on the modeled Meiko CS/2, providing both
// implementations the paper compares in Figures 2, 3, 7 and 8:
//
//   - LowLatency: the paper's contribution — matching on the SPARC inside
//     MPI calls, eager transfers overlapped with matching into per-sender
//     envelope slots (one outstanding message per pair), direct DMA above
//     the 180-byte crossover, and MPI_Bcast on the hardware broadcast.
//   - MPICH: the ANL/MSU baseline — MPI over the tport widget, with
//     matching performed in the background on the Elan co-processor and
//     broadcast built from point-to-point messages.
package meiko

import (
	"time"

	"repro/internal/core"
	"repro/internal/meiko"
	"repro/internal/sim"
	"repro/mpi"
)

// Impl selects the MPI implementation.
type Impl int

const (
	// LowLatency is the paper's SPARC-matching implementation.
	LowLatency Impl = iota
	// MPICH is the tport-based baseline with Elan matching.
	MPICH
)

func (i Impl) String() string {
	if i == LowLatency {
		return "lowlatency"
	}
	return "mpich"
}

// Config describes a Meiko job.
type Config struct {
	Nodes int
	Impl  Impl
	// Lanes > 1 builds the world on the sharded kernel: nodes block-mapped
	// onto that many lanes, with the wire latency — or the fat-tree hop
	// latency, half of it, when FatTree is set — as the lookahead bound.
	Lanes int
	// Eager is the eager/rendezvous crossover in bytes; 0 means the
	// paper's measured 180 (Figure 1). Only the low-latency
	// implementation uses it.
	Eager int
	// Costs overrides the hardware cost model; nil means DefaultCosts.
	Costs *meiko.Costs
	// Bcast overrides the broadcast algorithm; default is the hardware
	// broadcast for LowLatency and a binomial point-to-point tree for
	// MPICH.
	Bcast mpi.BcastAlg
	// FatTree routes unicast traffic through the staged fat-tree
	// congestion model instead of the flat-latency wire.
	FatTree bool
	// EnvelopeSlots is the number of preallocated envelope slots per
	// (sender, receiver) pair; 0 means the paper's single slot. More slots
	// buy pipelining of small-message streams at the cost of receiver
	// memory (the trade §4.1 discusses).
	EnvelopeSlots int
	Seed          int64
}

// DefaultEager is the paper's measured crossover point (Figure 1).
const DefaultEager = 180

// NewWorld builds the machine and per-rank endpoints for cfg.
func NewWorld(cfg Config) (*mpi.World, *meiko.Machine) {
	costs := meiko.DefaultCosts()
	if cfg.Costs != nil {
		costs = *cfg.Costs
	}
	var (
		m      *meiko.Machine
		sh     *sim.Shard
		laneOf []int
	)
	if cfg.Lanes > 1 {
		lanes := cfg.Lanes
		if lanes > cfg.Nodes {
			lanes = cfg.Nodes
		}
		// The lookahead bound is the minimum cross-lane stage latency: the
		// flat wire hop, or the per-switch hop (WireLatency/2) once the
		// fat tree stages the route.
		lookahead := sim.Duration(costs.WireLatency)
		if cfg.FatTree {
			lookahead /= 2
		}
		sh = sim.NewShard(cfg.Seed+1, lanes, lookahead)
		sh.MaxEvents = 500_000_000
		laneOf = make([]int, cfg.Nodes)
		for i := range laneOf {
			laneOf[i] = i * lanes / cfg.Nodes
		}
		m = meiko.NewShardedMachine(sh, laneOf, cfg.Nodes, costs)
	} else {
		s := sim.NewScheduler(cfg.Seed + 1)
		s.MaxEvents = 500_000_000
		m = meiko.NewMachine(s, cfg.Nodes, costs)
	}
	if cfg.FatTree {
		m.Tree = m.NewFatTree()
	}
	eager := cfg.Eager
	if eager == 0 {
		eager = DefaultEager
	}

	eps := make([]core.Endpoint, cfg.Nodes)
	switch cfg.Impl {
	case LowLatency:
		trs := make([]*lowlatTransport, cfg.Nodes)
		for i := 0; i < cfg.Nodes; i++ {
			eng := core.NewEngine(m.Nodes[i].S, i, cfg.Nodes, lowlatEngineCosts(), nil)
			trs[i] = newLowlatTransport(m, m.Nodes[i], eng, eager, cfg.EnvelopeSlots, trs)
			eng.SetTransport(trs[i])
			eps[i] = &LowLatEndpoint{Engine: eng, tr: trs[i]}
		}
	case MPICH:
		for i := 0; i < cfg.Nodes; i++ {
			eps[i] = newMPICHEndpoint(m, i, cfg.Nodes)
		}
	}

	var w *mpi.World
	if sh != nil {
		w = mpi.NewShardedWorld(sh, eps, laneOf)
	} else {
		w = mpi.NewWorld(m.S, eps)
	}
	switch {
	case cfg.Bcast != mpi.BcastAuto:
		w.Bcast = cfg.Bcast
	case cfg.Impl == LowLatency:
		w.Bcast = mpi.BcastAuto // resolves to the hardware broadcast
	default:
		w.Bcast = mpi.BcastBinomial // MPICH's point-to-point tree
	}
	if cfg.Impl == LowLatency {
		// Failure detection on the CS/2: a missed envelope-slot heartbeat
		// horizon, a handful of network round trips. MPICH keeps the zero
		// default — its tport endpoints cannot fail requests per peer, and
		// ScheduleKills rejects them with a typed error.
		w.FTDetect = 20 * time.Microsecond
	}
	return w, m
}

// Run executes body as an n-rank MPI job on the configured machine.
func Run(cfg Config, body func(c *mpi.Comm) error) (*mpi.Report, error) {
	w, _ := NewWorld(cfg)
	return mpi.Launch(w, body)
}

// lowlatEngineCosts are the SPARC-side engine charges of the low-latency
// implementation, calibrated (with the transport costs) to the paper's
// 104 µs 1-byte round trip.
func lowlatEngineCosts() core.EngineCosts {
	return core.EngineCosts{
		Match:        15 * time.Microsecond,
		CopyBase:     1 * time.Microsecond,
		CopyPerByte:  100 * time.Nanosecond,
		SendOverhead: 12 * time.Microsecond,
		RecvOverhead: 9 * time.Microsecond,
	}
}
