package meiko

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"repro/mpi"
)

// pingPong measures the average round-trip time of n-byte messages.
func pingPong(t *testing.T, cfg Config, n, iters int) time.Duration {
	t.Helper()
	cfg.Nodes = 2
	var rtt time.Duration
	_, err := Run(cfg, func(c *mpi.Comm) error {
		data := make([]byte, n)
		buf := make([]byte, n)
		if c.Rank() == 0 {
			start := c.Wtime()
			for i := 0; i < iters; i++ {
				if err := c.Send(1, 0, data); err != nil {
					return err
				}
				if _, err := c.Recv(1, 0, buf); err != nil {
					return err
				}
			}
			rtt = (c.Wtime() - start) / time.Duration(iters)
			return nil
		}
		for i := 0; i < iters; i++ {
			if _, err := c.Recv(0, 0, buf); err != nil {
				return err
			}
			if err := c.Send(0, 0, data); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return rtt
}

// Paper anchor (Figure 2): the low-latency MPI 1-byte round trip is 104 µs.
func TestLowLatencyRTTCalibration(t *testing.T) {
	us := float64(pingPong(t, Config{Impl: LowLatency}, 1, 20)) / 1e3
	if us < 99 || us > 109 {
		t.Fatalf("low-latency 1-byte RTT = %.1f us, want ~104 (paper anchor)", us)
	}
}

// Paper anchor (Figure 2): MPICH over tport adds 158 µs to the 52 µs tport
// round trip: 210 µs total.
func TestMPICHRTTCalibration(t *testing.T) {
	us := float64(pingPong(t, Config{Impl: MPICH}, 1, 20)) / 1e3
	if us < 198 || us > 222 {
		t.Fatalf("MPICH 1-byte RTT = %.1f us, want ~210 (paper anchor)", us)
	}
}

// Figure 2's ordering: tport < low-latency MPI < MPICH at every size.
func TestFigure2Ordering(t *testing.T) {
	for _, n := range []int{1, 64, 256, 1024} {
		low := pingPong(t, Config{Impl: LowLatency}, n, 5)
		mpich := pingPong(t, Config{Impl: MPICH}, n, 5)
		if low >= mpich {
			t.Fatalf("size %d: low-latency %v >= mpich %v", n, low, mpich)
		}
	}
}

// Figure 1: the eager ("buffering") path wins below the crossover and the
// rendezvous ("no buffering") path wins above it; with the default cost
// model the crossover sits near the paper's 180 bytes.
func TestFigure1Crossover(t *testing.T) {
	eagerOnly := func(n int) time.Duration {
		return pingPong(t, Config{Impl: LowLatency, Eager: 1 << 20}, n, 5)
	}
	rndvOnly := func(n int) time.Duration {
		return pingPong(t, Config{Impl: LowLatency, Eager: 1}, n, 5)
	}
	if e, r := eagerOnly(16), rndvOnly(16); e >= r {
		t.Fatalf("16B: eager %v >= rendezvous %v; small messages should prefer buffering", e, r)
	}
	if e, r := eagerOnly(4096), rndvOnly(4096); e <= r {
		t.Fatalf("4KB: eager %v <= rendezvous %v; large messages should prefer DMA", e, r)
	}
	// Locate the crossover by scanning.
	lo, hi := 0, 0
	for n := 16; n <= 1024; n += 16 {
		if eagerOnly(n) <= rndvOnly(n) {
			lo = n
		} else if hi == 0 {
			hi = n
		}
	}
	if lo == 0 || hi == 0 || lo < 120 || hi > 280 {
		t.Fatalf("crossover between %d and %d bytes, want near 180 (paper anchor)", lo, hi)
	}
}

// Figure 3: both implementations approach the 39 MB/s DMA bandwidth for
// large transfers, with the low-latency implementation at least as fast.
func TestFigure3Bandwidth(t *testing.T) {
	bw := func(impl Impl) float64 {
		cfg := Config{Nodes: 2, Impl: impl}
		const chunk = 256 * 1024
		const iters = 8
		var elapsed time.Duration
		_, err := Run(cfg, func(c *mpi.Comm) error {
			if c.Rank() == 0 {
				data := make([]byte, chunk)
				for i := 0; i < iters; i++ {
					if err := c.Send(1, 0, data); err != nil {
						return err
					}
				}
				// Wait for the final ack so timing covers delivery.
				_, err := c.Recv(1, 1, make([]byte, 1))
				return err
			}
			buf := make([]byte, chunk)
			for i := 0; i < iters; i++ {
				if _, err := c.Recv(0, 0, buf); err != nil {
					return err
				}
			}
			elapsed = c.Wtime()
			return c.Send(0, 1, []byte{1})
		})
		if err != nil {
			t.Fatal(err)
		}
		return float64(chunk*iters) / elapsed.Seconds() / 1e6
	}
	low := bw(LowLatency)
	mpich := bw(MPICH)
	if low < 33 || low > 41 {
		t.Fatalf("low-latency bandwidth = %.1f MB/s, want ~36-39 (paper anchor)", low)
	}
	if mpich < 28 || mpich > 41 {
		t.Fatalf("MPICH bandwidth = %.1f MB/s, want near DMA rate", mpich)
	}
	if low < mpich {
		t.Fatalf("low-latency (%.1f) should be at least MPICH (%.1f)", low, mpich)
	}
}

// The full MPI semantics suite runs identically on both implementations.
func TestSemanticsBothImpls(t *testing.T) {
	for _, impl := range []Impl{LowLatency, MPICH} {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			const n = 4
			_, err := Run(Config{Nodes: n, Impl: impl}, func(c *mpi.Comm) error {
				// Wildcards + payload integrity, eager and rendezvous sizes.
				for _, size := range []int{3, 100, 5000} {
					if c.Rank() != 0 {
						data := make([]byte, size)
						for i := range data {
							data[i] = byte(i + c.Rank())
						}
						if err := c.Send(0, size, data); err != nil {
							return err
						}
					} else {
						for k := 1; k < n; k++ {
							buf := make([]byte, size)
							st, err := c.Recv(mpi.AnySource, size, buf)
							if err != nil {
								return err
							}
							for i := range buf {
								if buf[i] != byte(i+st.Source) {
									return fmt.Errorf("size %d from %d: corrupt at %d", size, st.Source, i)
								}
							}
						}
					}
					if err := c.Barrier(); err != nil {
						return err
					}
				}
				// Ssend blocks for the match (ranks synchronize first so
				// the timing assertion is meaningful).
				if err := c.Barrier(); err != nil {
					return err
				}
				if c.Rank() == 1 {
					start := c.Wtime()
					if err := c.Ssend(0, 99, []byte{1}); err != nil {
						return err
					}
					if c.Wtime()-start < 900*time.Microsecond {
						return fmt.Errorf("Ssend returned in %v, before the 1ms-delayed receive", c.Wtime()-start)
					}
				}
				if c.Rank() == 0 {
					c.Compute(time.Millisecond)
					if _, err := c.Recv(1, 99, make([]byte, 1)); err != nil {
						return err
					}
				}
				// Probe.
				if c.Rank() == 2 {
					if err := c.Send(3, 7, []byte("probe me")); err != nil {
						return err
					}
				}
				if c.Rank() == 3 {
					st, err := c.Probe(2, 7)
					if err != nil {
						return err
					}
					if st.Count != 8 {
						return fmt.Errorf("probe count = %d", st.Count)
					}
					buf := make([]byte, st.Count)
					if _, err := c.Recv(st.Source, st.Tag, buf); err != nil {
						return err
					}
					if !bytes.Equal(buf, []byte("probe me")) {
						return fmt.Errorf("probe recv got %q", buf)
					}
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestHardwareBcastUsedAndCorrect(t *testing.T) {
	const n = 8
	rep, err := Run(Config{Nodes: n, Impl: LowLatency}, func(c *mpi.Comm) error {
		buf := make([]byte, 1000)
		if c.Rank() == 3 {
			for i := range buf {
				buf[i] = byte(i * 5)
			}
		}
		if err := c.Bcast(3, buf); err != nil {
			return err
		}
		for i := range buf {
			if buf[i] != byte(i*5) {
				return fmt.Errorf("rank %d: bcast corrupt at %d", c.Rank(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Acct.Count["hwbcast"] == 0 {
		t.Fatal("hardware broadcast not used by the low-latency implementation")
	}
}

// Figure 7's structural claim: broadcasting with the hardware is much
// cheaper than MPICH's point-to-point tree.
func TestHWBcastBeatsTreeBcast(t *testing.T) {
	elapsed := func(impl Impl) time.Duration {
		rep, err := Run(Config{Nodes: 16, Impl: impl}, func(c *mpi.Comm) error {
			buf := make([]byte, 1024)
			for i := 0; i < 20; i++ {
				if err := c.Bcast(0, buf); err != nil {
					return err
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxRankElapsed
	}
	hw, tree := elapsed(LowLatency), elapsed(MPICH)
	if hw >= tree {
		t.Fatalf("hardware bcast %v >= mpich tree bcast %v", hw, tree)
	}
}

func TestRepeatedHWBcastDifferentRoots(t *testing.T) {
	const n = 4
	_, err := Run(Config{Nodes: n, Impl: LowLatency}, func(c *mpi.Comm) error {
		for round := 0; round < 8; round++ {
			root := round % n
			buf := make([]byte, 64)
			if c.Rank() == root {
				for i := range buf {
					buf[i] = byte(round*10 + i)
				}
			}
			if err := c.Bcast(root, buf); err != nil {
				return err
			}
			if buf[1] != byte(round*10+1) {
				return fmt.Errorf("round %d rank %d: got %d", round, c.Rank(), buf[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSlotFlowControlSerializesEagerSends(t *testing.T) {
	// With one envelope slot per pair, a burst of eager sends to a slow
	// receiver must wait for slot-free acks — but never deadlock.
	_, err := Run(Config{Nodes: 2, Impl: LowLatency}, func(c *mpi.Comm) error {
		const msgs = 20
		if c.Rank() == 0 {
			for i := 0; i < msgs; i++ {
				if err := c.Send(1, i, make([]byte, 100)); err != nil {
					return err
				}
			}
			return nil
		}
		c.Compute(5 * time.Millisecond)
		for i := 0; i < msgs; i++ {
			if _, err := c.Recv(0, i, make([]byte, 100)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonblockingOverlapLowLat(t *testing.T) {
	// Isend + compute + Wait: the paper's motivation for Elan sends in the
	// background — the SPARC is free during the transfer.
	_, err := Run(Config{Nodes: 2, Impl: LowLatency}, func(c *mpi.Comm) error {
		if c.Rank() == 0 {
			req, err := c.Isend(1, 0, make([]byte, 50_000))
			if err != nil {
				return err
			}
			c.Compute(10 * time.Millisecond)
			_, err = req.Wait()
			return err
		}
		_, err := c.Recv(0, 0, make([]byte, 50_000))
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestDeterministicRuns(t *testing.T) {
	run := func(impl Impl) time.Duration {
		rep, err := Run(Config{Nodes: 4, Impl: impl}, func(c *mpi.Comm) error {
			return c.Barrier()
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MaxRankElapsed
	}
	for _, impl := range []Impl{LowLatency, MPICH} {
		if a, b := run(impl), run(impl); a != b {
			t.Fatalf("%v nondeterministic: %v vs %v", impl, a, b)
		}
	}
}
