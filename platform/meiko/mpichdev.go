package meiko

import (
	"time"

	"repro/internal/core"
	"repro/internal/meiko"
	"repro/internal/sim"
	"repro/internal/trace"
)

// MPICH baseline: MPI over the tport widget, as shipped in the ANL/MSU
// MPICH distribution for the CS/2. The tport performs tag matching on the
// Elan co-processor, so receives progress in the background — at the cost
// of Elan processing time and SPARC<->Elan synchronization, plus MPICH's
// per-call bookkeeping, which together add the 158 µs the paper measures
// over the raw widget (Figure 2).

// MPI (context, source, tag) triples are encoded into the widget's 64-bit
// tag space, with mask bits expressing MPI's wildcards:
//
//	bit 63    : synchronous-mode flag (ignored in matching)
//	bit 62    : acknowledgement channel (always matched)
//	bits 40-55: context id
//	bits 24-39: source rank
//	bits  0-23: user tag
const (
	mpichSyncBit = uint64(1) << 63
	mpichAckBit  = uint64(1) << 62
	mpichCtxSh   = 40
	mpichSrcSh   = 24
	mpichTagMask = uint64(1)<<24 - 1
	mpichCtxMask = uint64(0xFFFF) << mpichCtxSh
	mpichSrcMask = uint64(0xFFFF) << mpichSrcSh
)

func encodeMPICHTag(ctx, src, tag int) uint64 {
	return uint64(ctx)<<mpichCtxSh | uint64(src)<<mpichSrcSh | uint64(tag)&mpichTagMask
}

// recvPattern builds the (tag, mask) pair for a receive with wildcards.
func recvPattern(ctx, src, tag int) (uint64, uint64) {
	want := uint64(ctx) << mpichCtxSh
	mask := mpichAckBit | mpichCtxMask // never match acks; context is exact
	if src != core.AnySource {
		want |= uint64(src) << mpichSrcSh
		mask |= mpichSrcMask
	}
	if tag != core.AnyTag {
		want |= uint64(tag) & mpichTagMask
		mask |= mpichTagMask
	}
	return want, mask
}

// MPICHCosts are the baseline's SPARC-side per-call charges, calibrated so
// a 1-byte round trip costs the paper's 210 µs (tport's 52 plus 158).
type MPICHCosts struct {
	SendOverhead sim.Duration
	RecvOverhead sim.Duration
}

// DefaultMPICHCosts reproduces Figure 2's MPICH curve.
func DefaultMPICHCosts() MPICHCosts {
	return MPICHCosts{
		SendOverhead: 40 * time.Microsecond,
		RecvOverhead: 39 * time.Microsecond,
	}
}

// MPICHEndpoint implements core.Endpoint over the tport widget.
type MPICHEndpoint struct {
	m     *meiko.Machine
	node  *meiko.Node
	port  *meiko.Tport
	rank  int
	size  int
	acct  *core.Acct
	costs MPICHCosts

	ops map[*core.Request]*mpichOp

	bufCap, bufUsed int

	trace *trace.Log
}

// SetTrace attaches a timeline log (the profiling interface).
func (e *MPICHEndpoint) SetTrace(l *trace.Log) { e.trace = l }

// TraceLog returns the attached timeline log (nil when tracing is off).
func (e *MPICHEndpoint) TraceLog() *trace.Log { return e.trace }

func (e *MPICHEndpoint) trc(kind trace.Kind, peer, tag, bytes int, note string) {
	if e.trace == nil {
		return
	}
	e.trace.Add(trace.Event{T: e.node.S.Now(), Rank: e.rank, Kind: kind, Peer: peer, Tag: tag, Bytes: bytes, Note: note})
}

type mpichOp struct {
	treq   *meiko.TportReq
	ackReq *meiko.TportReq // posted for synchronous-mode sends
	isRecv bool
	count  int
}

func newMPICHEndpoint(m *meiko.Machine, rank, size int) *MPICHEndpoint {
	return &MPICHEndpoint{
		m:     m,
		node:  m.Nodes[rank],
		port:  m.NewTport(m.Nodes[rank]),
		rank:  rank,
		size:  size,
		acct:  core.NewAcct(),
		costs: DefaultMPICHCosts(),
		ops:   make(map[*core.Request]*mpichOp),
	}
}

var _ core.Endpoint = (*MPICHEndpoint)(nil)

// Rank implements core.Endpoint.
func (e *MPICHEndpoint) Rank() int { return e.rank }

// Size implements core.Endpoint.
func (e *MPICHEndpoint) Size() int { return e.size }

// Acct implements core.Endpoint.
func (e *MPICHEndpoint) Acct() *core.Acct { return e.acct }

// Scheduler implements core.Endpoint.
func (e *MPICHEndpoint) Scheduler() *sim.Scheduler { return e.node.S }

// Port exposes the underlying tport (instrumentation).
func (e *MPICHEndpoint) Port() *meiko.Tport { return e.port }

// Isend implements core.Endpoint.
func (e *MPICHEndpoint) Isend(p *sim.Proc, dst, tag, ctx int, mode core.Mode, data []byte) (*core.Request, error) {
	if dst < 0 || dst >= e.size {
		return nil, core.Errorf(core.ErrInternal, "send to invalid rank %d (size %d)", dst, e.size)
	}
	e.acct.Charge(p, core.CostOverhead, e.costs.SendOverhead)
	e.acct.Incr("send", 1)
	e.trc(trace.SendStart, dst, tag, len(data), mode.String())
	env := core.Envelope{Source: e.rank, Dest: dst, Tag: tag, Context: ctx, Count: len(data), Mode: mode}
	req := core.NewRequest(false, env, data)
	op := &mpichOp{count: len(data)}
	e.ops[req] = op

	wtag := encodeMPICHTag(ctx, e.rank, tag)
	switch mode {
	case core.ModeSync:
		wtag |= mpichSyncBit
		// Post the ack receive before sending, so the ack cannot be lost.
		ackTag := mpichAckBit | encodeMPICHTag(ctx, dst, tag)
		op.ackReq = e.port.IRecv(p, ackTag, ^uint64(0)&^mpichSyncBit, nil)
	case core.ModeBuffered:
		if e.bufUsed+len(data) > e.bufCap {
			delete(e.ops, req)
			return nil, core.Errorf(core.ErrBuffer, "buffered send of %d bytes exceeds attached buffer (%d of %d used)", len(data), e.bufUsed, e.bufCap)
		}
		e.bufUsed += len(data)
		e.acct.Charge(p, core.CostCopy, sim.Duration(len(data))*e.m.Costs.CopyPerByte)
	}
	// Ready mode: MPICH's CS/2 device treats MPI_Rsend as MPI_Send.
	op.treq = e.port.ISend(p, dst, wtag, data)
	if mode == core.ModeBuffered {
		n := len(data)
		op.treq.OnDone = func() {
			e.bufUsed -= n
			if e.bufUsed < 0 {
				e.bufUsed = 0
			}
		}
		// Buffered sends are complete as soon as the data is captured.
		req.Complete(core.Status{Source: dst, Tag: tag, Count: n}, nil)
	}
	return req, nil
}

// Irecv implements core.Endpoint.
func (e *MPICHEndpoint) Irecv(p *sim.Proc, src, tag, ctx int, buf []byte) (*core.Request, error) {
	if src != core.AnySource && (src < 0 || src >= e.size) {
		return nil, core.Errorf(core.ErrInternal, "receive from invalid rank %d (size %d)", src, e.size)
	}
	e.acct.Incr("recv", 1)
	e.trc(trace.RecvPost, src, tag, len(buf), "")
	want, mask := recvPattern(ctx, src, tag)
	req := core.NewRequest(true, core.Envelope{Source: src, Tag: tag, Context: ctx}, buf)
	e.ops[req] = &mpichOp{isRecv: true, treq: e.port.IRecv(p, want, mask, buf)}
	return req, nil
}

// finalize turns a completed tport operation into MPI request state.
func (e *MPICHEndpoint) finalize(p *sim.Proc, r *core.Request, op *mpichOp) (core.Status, error) {
	defer delete(e.ops, r)
	if op.isRecv {
		// MPICH's receive-side bookkeeping (envelope decode, queue and
		// status updates) runs after the message arrives — on the
		// critical path, unlike the posting cost.
		e.acct.Charge(p, core.CostOverhead, e.costs.RecvOverhead)
		full := op.treq.Tag
		src := int((full & mpichSrcMask) >> mpichSrcSh)
		tag := int(full & mpichTagMask)
		st := core.Status{Source: src, Tag: tag, Count: op.treq.N}
		var err error
		if full&mpichSyncBit != 0 {
			// Acknowledge the synchronous send.
			ctx := int((full & mpichCtxMask) >> mpichCtxSh)
			ackTag := mpichAckBit | encodeMPICHTag(ctx, e.rank, tag)
			e.port.Send(p, src, ackTag, nil)
		}
		r.Complete(st, err)
		e.trc(trace.RecvDone, st.Source, st.Tag, st.Count, "")
		return st, err
	}
	if op.ackReq != nil {
		e.port.Wait(p, op.ackReq)
	}
	st := core.Status{Source: r.Env.Dest, Tag: r.Env.Tag, Count: op.count}
	r.Complete(st, nil)
	e.trc(trace.SendDone, r.Env.Dest, r.Env.Tag, op.count, "")
	return st, nil
}

// Wait implements core.Endpoint.
func (e *MPICHEndpoint) Wait(p *sim.Proc, r *core.Request) (core.Status, error) {
	op := e.ops[r]
	if op == nil {
		return r.Status(), r.Err()
	}
	if r.Done() && op.isRecv == false && op.ackReq == nil {
		delete(e.ops, r)
		return r.Status(), r.Err()
	}
	e.port.Wait(p, op.treq)
	return e.finalize(p, r, op)
}

// Test implements core.Endpoint.
func (e *MPICHEndpoint) Test(p *sim.Proc, r *core.Request) (core.Status, bool, error) {
	op := e.ops[r]
	if op == nil {
		return r.Status(), r.Done(), r.Err()
	}
	if !op.treq.Done() {
		return core.Status{}, false, nil
	}
	if !op.isRecv && op.ackReq != nil && !op.ackReq.Done() {
		return core.Status{}, false, nil
	}
	st, err := e.finalize(p, r, op)
	return st, true, err
}

// Probe implements core.Endpoint: a blocking probe against the Elan's
// unexpected queue.
func (e *MPICHEndpoint) Probe(p *sim.Proc, src, tag, ctx int) (core.Status, error) {
	for {
		st, ok, err := e.Iprobe(p, src, tag, ctx)
		if err != nil || ok {
			return st, err
		}
		e.port.WaitArrival(p)
	}
}

// Iprobe implements core.Endpoint.
func (e *MPICHEndpoint) Iprobe(p *sim.Proc, src, tag, ctx int) (core.Status, bool, error) {
	want, mask := recvPattern(ctx, src, tag)
	psrc, n, full, ok := e.port.Probe(p, want, mask)
	if !ok {
		return core.Status{}, false, nil
	}
	_ = psrc
	return core.Status{Source: int((full & mpichSrcMask) >> mpichSrcSh), Tag: int(full & mpichTagMask), Count: n}, true, nil
}

// Cancel implements core.Endpoint for unmatched posted receives.
func (e *MPICHEndpoint) Cancel(p *sim.Proc, r *core.Request) error {
	op := e.ops[r]
	if op == nil || !op.isRecv {
		return core.Errorf(core.ErrInternal, "cancel of send requests is not supported")
	}
	if e.port.CancelRecv(op.treq) {
		r.MarkCancelled()
		r.Complete(core.Status{}, nil)
		delete(e.ops, r)
	}
	return nil
}

// Finalize implements core.Endpoint. The tport widget progresses sends on
// the Elan autonomously, so there is nothing to drive.
func (e *MPICHEndpoint) Finalize(p *sim.Proc) {}

// BufferAttach implements core.Endpoint.
func (e *MPICHEndpoint) BufferAttach(n int) { e.bufCap = n }

// BufferDetach implements core.Endpoint.
func (e *MPICHEndpoint) BufferDetach() int {
	n := e.bufCap
	e.bufCap = 0
	return n
}
