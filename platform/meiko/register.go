package meiko

import (
	"fmt"

	"repro/internal/meiko"
	"repro/mpi"
	"repro/platform/registry"
)

// The Meiko backends: the paper's low-latency implementation and the
// MPICH-over-tport baseline, registered so every entrypoint builds them
// through the registry.
func init() {
	registry.Register("meiko/lowlatency", func(s registry.Spec) (*mpi.World, error) {
		return buildWorld(s, LowLatency)
	})
	registry.Register("meiko/mpich", func(s registry.Spec) (*mpi.World, error) {
		return buildWorld(s, MPICH)
	})
}

func buildWorld(s registry.Spec, impl Impl) (*mpi.World, error) {
	cfg, err := specConfig(s)
	if err != nil {
		return nil, err
	}
	cfg.Impl = impl
	w, m := NewWorld(cfg)
	if s.TreeFaults != "" {
		faults, err := meiko.ParseTreeFaults(s.TreeFaults)
		if err != nil {
			return nil, err
		}
		if err := m.Tree.SetFaults(faults); err != nil {
			return nil, err
		}
	}
	return w, nil
}

// specConfig maps the platform-neutral job spec onto this platform's
// Config.
func specConfig(s registry.Spec) (Config, error) {
	cfg := Config{
		Nodes:         s.Ranks,
		Lanes:         s.Lanes,
		Eager:         s.Eager,
		Bcast:         s.Bcast,
		FatTree:       s.FatTree || s.TreeFaults != "",
		EnvelopeSlots: s.EnvelopeSlots,
		Seed:          s.Seed,
	}
	if s.Costs != nil {
		costs, ok := s.Costs.(*meiko.Costs)
		if !ok {
			return Config{}, fmt.Errorf("meiko: spec costs are %T, want *meiko.Costs", s.Costs)
		}
		cfg.Costs = costs
	}
	return cfg, nil
}
