package meiko

import (
	"fmt"
	"testing"
	"time"

	"repro/mpi"
)

// The paper's machine is a 64-node CS/2: the full configuration must run
// collectives and bulk point-to-point traffic correctly on both
// implementations.
func TestFullMachine64Nodes(t *testing.T) {
	for _, impl := range []Impl{LowLatency, MPICH} {
		impl := impl
		t.Run(impl.String(), func(t *testing.T) {
			rep, err := Run(Config{Nodes: 64, Impl: impl}, func(c *mpi.Comm) error {
				// Broadcast + reduction over the whole machine.
				buf := make([]byte, 2048)
				if c.Rank() == 0 {
					for i := range buf {
						buf[i] = byte(i * 3)
					}
				}
				if err := c.Bcast(0, buf); err != nil {
					return err
				}
				for i := 0; i < len(buf); i += 101 {
					if buf[i] != byte(i*3) {
						return fmt.Errorf("rank %d: bcast corrupt at %d", c.Rank(), i)
					}
				}
				sum, err := c.AllreduceFloat64(mpi.SumFloat64, []float64{1})
				if err != nil {
					return err
				}
				if sum[0] != 64 {
					return fmt.Errorf("allreduce = %v", sum[0])
				}
				// Neighbor exchange around the full ring.
				right := (c.Rank() + 1) % 64
				left := (c.Rank() + 63) % 64
				out := []byte{byte(c.Rank())}
				in := make([]byte, 1)
				if _, err := c.Sendrecv(right, 1, out, left, 1, in); err != nil {
					return err
				}
				if int(in[0]) != left {
					return fmt.Errorf("rank %d: ring got %d", c.Rank(), in[0])
				}
				return c.Barrier()
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.MaxRankElapsed <= 0 || rep.MaxRankElapsed > time.Second {
				t.Fatalf("implausible elapsed %v", rep.MaxRankElapsed)
			}
		})
	}
}

// 64 nodes through the fat-tree congestion model.
func TestFullMachineFatTree(t *testing.T) {
	_, err := Run(Config{Nodes: 64, Impl: LowLatency, FatTree: true}, func(c *mpi.Comm) error {
		// All-to-all across the tree: every pair exchanges one byte.
		send := make([]byte, 64)
		for i := range send {
			send[i] = byte(c.Rank())
		}
		recv := make([]byte, 64)
		if err := c.Alltoall(send, recv); err != nil {
			return err
		}
		for i, v := range recv {
			if int(v) != i {
				return fmt.Errorf("rank %d: alltoall[%d] = %d", c.Rank(), i, v)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}
