package meiko

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/core"
)

// Property: the MPICH tag encoding round-trips (ctx, src, tag) and the
// receive pattern matches exactly the envelopes MPI semantics say it must.
func TestMPICHTagEncodingProperty(t *testing.T) {
	prop := func(ctx, src uint16, tag uint32, wildcardSrc, wildcardTag bool) bool {
		tg := int(tag & 0xFFFFFF)
		enc := encodeMPICHTag(int(ctx), int(src), tg)
		// Decode the fields back.
		if int((enc&mpichSrcMask)>>mpichSrcSh) != int(src) {
			return false
		}
		if int(enc&mpichTagMask) != tg {
			return false
		}
		if int((enc&mpichCtxMask)>>mpichCtxSh) != int(ctx) {
			return false
		}
		wantSrc := int(src)
		if wildcardSrc {
			wantSrc = core.AnySource
		}
		wantTag := tg
		if wildcardTag {
			wantTag = core.AnyTag
		}
		want, mask := recvPattern(int(ctx), wantSrc, wantTag)
		// The message must match its own pattern...
		if enc&mask != want&mask {
			return false
		}
		// ...but not with the sync bit flipped into the ack channel.
		ack := enc | mpichAckBit
		return ack&mask != want&mask
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500, Rand: rand.New(rand.NewSource(10))}); err != nil {
		t.Fatal(err)
	}
}

func TestRecvPatternContextNeverWild(t *testing.T) {
	want, mask := recvPattern(3, core.AnySource, core.AnyTag)
	other := encodeMPICHTag(4, 1, 1)
	if other&mask == want&mask {
		t.Fatal("pattern matched a different context")
	}
	same := encodeMPICHTag(3, 9, 12345)
	if same&mask != want&mask {
		t.Fatal("wildcard pattern rejected a matching envelope")
	}
}

func TestSyncBitIgnoredInMatching(t *testing.T) {
	want, mask := recvPattern(1, 2, 7)
	env := encodeMPICHTag(1, 2, 7) | mpichSyncBit
	if env&mask != want&mask {
		t.Fatal("sync-mode envelope did not match a plain receive")
	}
}
