// Package registry is the single front door for building MPI worlds: the
// seam between the transport-independent engine and the platform ports.
// Every backend — the Meiko low-latency and MPICH implementations, the
// cluster's TCP/UDP/U-Net transports, and the in-memory reference fabric —
// registers a Builder under a stable name, and every entrypoint
// (cmd/mpirun, cmd/repro, the bench and conformance harnesses) builds
// worlds exclusively through Build. Adding a backend (a shared-memory
// port, a hierarchical fabric, a real-socket port) is a single Register
// call: it immediately becomes reachable from every command and is swept
// by the conformance matrix automatically.
//
// Backends live behind the engine / flow / transport layering: the engine
// (internal/core) owns MPI semantics, the flow layer (internal/flow) owns
// send ordering and credit/slot accounting, and each registered transport
// owns only byte movement and its platform cost model.
package registry

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/atm"
	"repro/internal/coll"
	"repro/internal/core"
	"repro/internal/sim"
	"repro/internal/workload"
	"repro/mpi"
)

// Spec describes one job: which backend to build and the knobs every
// entrypoint may turn. The zero value of each field selects the backend's
// calibrated default, so Spec{Platform: "meiko", Ranks: 2} is a complete
// job description.
type Spec struct {
	Platform  string // "meiko" | "cluster" | "mem"
	Impl      string // meiko implementation: "lowlatency" | "mpich" ("" = lowlatency)
	Transport string // cluster transport: "tcp" | "udp" | "unet" | "shm" ("" = tcp)
	Network   string // cluster network: "atm" | "eth" ("" = atm)
	Ranks     int
	Lanes     int   // sharded-kernel lanes (0/1 = single-lane kernel)
	Parallel  bool  // sharded kernel: pinned-worker parallel epoch execution
	Eager     int   // eager/rendezvous crossover bytes (0 = platform default)
	Credit    int   // cluster per-pair reserved receiver bytes (0 = default)
	Costs     any   // platform cost-model override (*meiko.Costs, *atm.Costs; nil = calibrated)
	Seed      int64 // workload/scheduler seed

	// Ablation knobs, threaded to the platform configs.
	Coll          string       // collective tuning, "op=alg,..." (see coll.ParseTuning; "" = auto-select)
	Bcast         mpi.BcastAlg // broadcast algorithm override (BcastAuto = platform default)
	LossRate      float64      // cluster: datagram loss probability per frame
	TCPNagle      bool         // cluster: leave Nagle/delayed acks on (no TCP_NODELAY)
	NoRTR         bool         // cluster: disable the RDMA-write rendezvous (pin RTS/CTS)
	FatTree       bool         // meiko: staged fat-tree congestion model
	EnvelopeSlots int          // meiko: per-pair envelope slots (0 = the paper's 1)

	// Fault-injection knobs (cluster only; see atm.Faults). Together with
	// LossRate these drive the shared fault layer wrapping both media.
	Delay      time.Duration // cluster: fixed one-way latency added per frame
	Jitter     time.Duration // cluster: extra uniform latency in [0, Jitter)
	Reorder    float64       // cluster: per-frame reordering probability
	Duplicate  float64       // cluster: per-frame duplication probability
	DropEveryN int           // cluster: deterministically drop every Nth frame
	Partition  string        // cluster: partition schedule (atm.ParsePartitions)
	FaultSeed  int64         // cluster: fault RNG seed (0 = derive from Seed)

	// Kills is a process-death schedule, "RANK@T;RANK@T" (atm.ParseKills).
	// Unlike the wire-fault knobs it works on every backend — deaths are
	// scheduled engine events, not frame mutations — so it is deliberately
	// excluded from HasFaults.
	Kills string

	// TreeFaults is a Meiko switch-plane outage schedule,
	// "STAGE:LANE@FROM-UNTIL;..." (meiko.ParseTreeFaults). It implies
	// FatTree and, like Kills, is excluded from HasFaults: the tree
	// reroutes deterministically around the dead plane, so runs stay
	// bit-reproducible without the cluster fault layer's RNG.
	TreeFaults string

	// Workload names a registered macro-workload pattern
	// (internal/workload.Names) the caller intends to drive on the world.
	// Build validates the name against the pattern registry; running the
	// workload itself is the caller's job (workload.Run / workload.Replay).
	Workload string
}

// HasFaults reports whether any fault-injection knob is set.
func (s Spec) HasFaults() bool {
	return s.LossRate > 0 || s.Delay > 0 || s.Jitter > 0 || s.Reorder > 0 ||
		s.Duplicate > 0 || s.DropEveryN > 0 || s.Partition != ""
}

// Key reports the registry name this spec resolves to.
func (s Spec) Key() string {
	switch s.Platform {
	case "meiko":
		impl := s.Impl
		if impl == "" {
			impl = "lowlatency"
		}
		return "meiko/" + impl
	case "cluster":
		tr := s.Transport
		if tr == "" {
			tr = "tcp"
		}
		return "cluster/" + tr
	default:
		return s.Platform
	}
}

// Builder constructs a fresh world for one job.
type Builder func(Spec) (*mpi.World, error)

var backends = map[string]Builder{}

// Register adds a backend under name. Platform packages call it from
// init(); registering a duplicate name panics (a wiring bug).
func Register(name string, b Builder) {
	if _, dup := backends[name]; dup {
		panic(fmt.Sprintf("registry: duplicate backend %q", name))
	}
	backends[name] = b
}

// Names reports every registered backend, sorted.
func Names() []string {
	out := make([]string, 0, len(backends))
	for name := range backends {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Lookup reports the builder registered under name.
func Lookup(name string) (Builder, bool) {
	b, ok := backends[name]
	return b, ok
}

// SpecFor parses a registry name ("cluster/udp", "meiko/mpich", "mem")
// back into the Spec fields that select it, for table-driven sweeps over
// Names().
func SpecFor(name string) Spec {
	var s Spec
	if i := strings.IndexByte(name, '/'); i >= 0 {
		s.Platform = name[:i]
		switch s.Platform {
		case "cluster":
			s.Transport = name[i+1:]
		default:
			s.Impl = name[i+1:]
		}
		return s
	}
	s.Platform = name
	return s
}

// Build constructs the world s describes, failing with the registered
// backend listing when the spec names no backend.
func Build(s Spec) (*mpi.World, error) {
	b, ok := backends[s.Key()]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q (registered: %s)", s.Key(), strings.Join(Names(), ", "))
	}
	if s.Ranks <= 0 {
		return nil, fmt.Errorf("backend %q: spec needs Ranks >= 1, got %d", s.Key(), s.Ranks)
	}
	if s.HasFaults() && s.Platform != "cluster" {
		return nil, fmt.Errorf("backend %q: fault injection (loss/delay/reorder/partition) exists only on the cluster platform", s.Key())
	}
	if s.TreeFaults != "" && s.Platform != "meiko" {
		return nil, fmt.Errorf("backend %q: switch-plane faults exist only on the meiko fat tree", s.Key())
	}
	if s.Workload != "" {
		if _, ok := workload.Lookup(s.Workload); !ok {
			return nil, fmt.Errorf("backend %q: unknown workload %q (registered: %s)",
				s.Key(), s.Workload, strings.Join(workload.Names(), ", "))
		}
	}
	w, err := b(s)
	if err != nil {
		return nil, err
	}
	if w.Sh != nil {
		w.Sh.Parallel = s.Parallel
	} else if s.Parallel {
		return nil, fmt.Errorf("backend %q: Parallel needs the sharded kernel (set Lanes > 1)", s.Key())
	}
	if s.Coll != "" {
		t, err := coll.ParseTuning(s.Coll)
		if err != nil {
			return nil, fmt.Errorf("backend %q: %w", s.Key(), err)
		}
		w.Tune = t
	}
	if s.Kills != "" {
		kills, err := atm.ParseKills(s.Kills)
		if err != nil {
			return nil, fmt.Errorf("backend %q: %w", s.Key(), err)
		}
		if err := w.ScheduleKills(kills); err != nil {
			return nil, fmt.Errorf("backend %q: %w", s.Key(), err)
		}
	}
	return w, nil
}

// Run builds the world for s and executes body as an MPI job on it.
func Run(s Spec, body func(c *mpi.Comm) error) (*mpi.Report, error) {
	w, err := Build(s)
	if err != nil {
		return nil, err
	}
	return mpi.Launch(w, body)
}

// The in-memory reference fabric: an idealized flat-latency interconnect
// around the same engine and flow machinery, registered here so the
// Transport contract's executable specification is itself a backend.
func init() {
	Register("mem", func(s Spec) (*mpi.World, error) {
		eager := s.Eager
		if eager == 0 {
			eager = 180
		}
		var w *mpi.World
		if s.Lanes > 1 {
			// Sharded kernel: one lane per node, ranks block-mapped onto
			// lanes, with the fabric's flat latency as the lookahead bound.
			lanes := s.Lanes
			if lanes > s.Ranks {
				lanes = s.Ranks
			}
			sh := sim.NewShard(s.Seed+1, lanes, time.Microsecond)
			sh.MaxEvents = 500_000_000
			laneOf := make([]int, s.Ranks)
			for i := range laneOf {
				laneOf[i] = i * lanes / s.Ranks
			}
			fab := core.NewShardedMemFabric(sh, laneOf, time.Microsecond, eager)
			fab.Credits = s.Credit
			eps := make([]core.Endpoint, s.Ranks)
			for i := range eps {
				e := core.NewEngine(sh.Lane(laneOf[i]), i, s.Ranks, core.EngineCosts{}, nil)
				fab.Attach(e)
				eps[i] = e
			}
			w = mpi.NewShardedWorld(sh, eps, laneOf)
		} else {
			sched := sim.NewScheduler(s.Seed + 1)
			sched.MaxEvents = 500_000_000
			fab := core.NewMemFabric(sched, time.Microsecond, eager)
			fab.Credits = s.Credit
			eps := make([]core.Endpoint, s.Ranks)
			for i := range eps {
				e := core.NewEngine(sched, i, s.Ranks, core.EngineCosts{}, nil)
				fab.Attach(e)
				eps[i] = e
			}
			w = mpi.NewWorld(sched, eps)
		}
		if s.Bcast != mpi.BcastAuto {
			w.Bcast = s.Bcast
		}
		// A flat-microsecond fabric detects a silent peer almost at once.
		w.FTDetect = 10 * time.Microsecond
		return w, nil
	})
}
