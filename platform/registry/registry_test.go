package registry_test

import (
	"strings"
	"testing"

	"repro/mpi"
	"repro/platform/registry"

	_ "repro/platform/cluster"
	_ "repro/platform/meiko"
)

// The full backend set every entrypoint may name. A newly registered
// backend extends this list and is picked up by the conformance matrix
// automatically.
var wantBackends = []string{
	"cluster/shm", "cluster/tcp", "cluster/udp", "cluster/unet",
	"meiko/lowlatency", "meiko/mpich",
	"mem",
}

func TestNamesComplete(t *testing.T) {
	got := registry.Names()
	for _, want := range wantBackends {
		found := false
		for _, name := range got {
			if name == want {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("backend %q not registered (have %v)", want, got)
		}
	}
}

func TestSpecKeyRoundTrip(t *testing.T) {
	for _, name := range registry.Names() {
		if key := registry.SpecFor(name).Key(); key != name {
			t.Errorf("SpecFor(%q).Key() = %q", name, key)
		}
	}
}

func TestSpecKeyDefaults(t *testing.T) {
	if k := (registry.Spec{Platform: "meiko"}).Key(); k != "meiko/lowlatency" {
		t.Errorf("meiko default key = %q", k)
	}
	if k := (registry.Spec{Platform: "cluster"}).Key(); k != "cluster/tcp" {
		t.Errorf("cluster default key = %q", k)
	}
}

func TestBuildUnknownListsBackends(t *testing.T) {
	_, err := registry.Build(registry.Spec{Platform: "hypercube", Ranks: 2})
	if err == nil {
		t.Fatal("unknown backend must fail")
	}
	for _, want := range wantBackends {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not list %q", err, want)
		}
	}
}

func TestBuildRejectsBadSpecs(t *testing.T) {
	if _, err := registry.Build(registry.Spec{Platform: "meiko"}); err == nil {
		t.Error("zero ranks must fail")
	}
	if _, err := registry.Build(registry.Spec{Platform: "cluster", Ranks: 2, Network: "token-ring"}); err == nil {
		t.Error("unknown network must fail")
	}
	if _, err := registry.Build(registry.Spec{Platform: "cluster", Ranks: 2, Costs: 42}); err == nil {
		t.Error("wrong costs type must fail")
	}
	if _, err := registry.Build(registry.Spec{Platform: "cluster", Transport: "unet", Network: "eth", Ranks: 2}); err == nil {
		t.Error("unet over ethernet must fail")
	}
}

// Every backend accepts the sharded kernel — including fault injection
// across lanes, now that the injector draws per-link RNG streams — and the
// one remaining restriction (no parallel execution without lanes) must
// fail loudly rather than degrade silently.
func TestBuildShardedKernel(t *testing.T) {
	for _, name := range registry.Names() {
		spec := registry.SpecFor(name)
		spec.Ranks, spec.Lanes = 2, 2
		if _, err := registry.Build(spec); err != nil {
			t.Errorf("backend %q rejected Lanes=2: %v", name, err)
		}
	}
	if _, err := registry.Build(registry.Spec{Platform: "cluster", Ranks: 2, Lanes: 2, LossRate: 0.01}); err != nil {
		t.Errorf("faults must compose with lanes (per-link RNG streams), got %v", err)
	}
	if _, err := registry.Build(registry.Spec{Platform: "cluster", Transport: "shm", Ranks: 2, LossRate: 0.01}); err == nil || !strings.Contains(err.Error(), "lossy wire") {
		t.Errorf("shm with faults must be rejected, got %v", err)
	}
	if _, err := registry.Build(registry.Spec{Platform: "mem", Ranks: 2, Parallel: true}); err == nil {
		t.Error("Parallel without lanes must fail")
	}
}

// Every backend must run a minimal job end to end through Run.
func TestRunSmokeEveryBackend(t *testing.T) {
	for _, name := range registry.Names() {
		name := name
		t.Run(strings.ReplaceAll(name, "/", "_"), func(t *testing.T) {
			spec := registry.SpecFor(name)
			spec.Ranks = 2
			rep, err := registry.Run(spec, func(c *mpi.Comm) error {
				buf := make([]byte, 8)
				if c.Rank() == 0 {
					if err := c.Send(1, 1, []byte("pingpong")); err != nil {
						return err
					}
					_, err := c.Recv(1, 2, buf)
					return err
				}
				if _, err := c.Recv(0, 1, buf); err != nil {
					return err
				}
				return c.Send(0, 2, buf)
			})
			if err != nil {
				t.Fatal(err)
			}
			if rep.Acct.Count["send"] != 2 || rep.Acct.Count["recv"] != 2 {
				t.Fatalf("counts = %v", rep.Acct.Count)
			}
		})
	}
}
